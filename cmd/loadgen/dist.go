package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"detectable/internal/runtime"
	"detectable/internal/workload"
)

// wlCfg bundles one run's workload shape: the operation mix, the key
// distribution and the batching knob, shared by the in-process, remote and
// restart-storm runners.
type wlCfg struct {
	mixName string
	spec    mixSpec

	// dist selects the key distribution: "uniform" keeps the seed behavior
	// (every process owns a disjoint key slice, exact expected-value
	// verification), "zipf" gives every process the full key space through
	// a seeded Zipfian chooser (rank 0 hottest), so processes genuinely
	// share hot keys — the regime the per-key write-registry verifier
	// exists for.
	dist  string
	theta float64

	// mput > 0 turns the write side of the mix into MultiPut batches of
	// that many entries (the large-mutation mix): each entry's detectable
	// outcome is verified individually, exactly like a single put.
	mput int

	procs, shards, keys int
	dur                 time.Duration
	seed                int64
	verbose             bool
}

func (w *wlCfg) validate() error {
	spec, ok := mixes[w.mixName]
	if !ok {
		return fmt.Errorf("unknown mix %q (want read-heavy, write-heavy, mixed or crash-storm)", w.mixName)
	}
	w.spec = spec
	switch w.dist {
	case "uniform":
		if w.keys < w.procs {
			return fmt.Errorf("uniform needs keys ≥ procs (got procs=%d keys=%d)", w.procs, w.keys)
		}
	case "zipf":
		if w.theta < 0 {
			return fmt.Errorf("need -theta ≥ 0 (got %g)", w.theta)
		}
	default:
		return fmt.Errorf("unknown -dist %q (want uniform or zipf)", w.dist)
	}
	if w.procs < 1 || w.shards < 1 || w.keys < 1 || w.mput < 0 {
		return fmt.Errorf("need procs ≥ 1, shards ≥ 1, keys ≥ 1 and -mput ≥ 0 (got procs=%d shards=%d keys=%d mput=%d)",
			w.procs, w.shards, w.keys, w.mput)
	}
	return nil
}

func (w *wlCfg) shared() bool { return w.dist == "zipf" }

// workerRNG derives worker pid's independent, replayable stream
// (splitmix-hashed — the old seed+pid*1001 scheme collided across -procs
// sweeps sharing a seed base).
func (w *wlCfg) workerRNG(pid int) *rand.Rand {
	return rand.New(rand.NewSource(workload.WorkerSeed(w.seed, w.procs, pid)))
}

// chooser draws worker pid's next key index into the global key list:
// Zipfian over the full space in shared mode, uniform over the worker's
// own disjoint slice otherwise.
type chooser struct {
	rng  *rand.Rand
	zipf *workload.Zipf // nil in uniform mode
	own  []int          // uniform mode: pid's global key indices
}

func (w *wlCfg) chooserFor(pid int, rng *rand.Rand) *chooser {
	if w.shared() {
		return &chooser{rng: rng, zipf: workload.NewZipf(rng, w.keys, w.theta)}
	}
	var own []int
	for k := pid; k < w.keys; k += w.procs {
		own = append(own, k)
	}
	return &chooser{rng: rng, own: own}
}

func (c *chooser) next() int {
	if c.zipf != nil {
		return c.zipf.Next()
	}
	return c.own[c.rng.Intn(len(c.own))]
}

// keyNames materializes the global key list ("key-0" is Zipf rank 0, the
// hottest key).
func keyNames(keys int) []string {
	out := make([]string, keys)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d", i)
	}
	return out
}

// sharedTracker is the per-key last-writer registry that keeps the
// zero-violations bar when processes share keys and no single process can
// know a key's exact expected value. Every write value is unique, so the
// registry can classify any observed value:
//
//   - a writer registers its value as in-flight BEFORE issuing the put and
//     settles it with the detectable verdict after — so any read that
//     observed the value finds it registered;
//   - a linearized read of v ≠ 0 is a violation unless v is a registered
//     in-flight or linearized write of that key (a phantom value, or a
//     value whose write's verdict said *failed*, is a lost/duplicated
//     effect). Reads mark values observed, so a later fail verdict on an
//     observed value is also convicted (the verdict lied);
//   - a linearized read of 0 is a violation only when it is provably
//     stale: some nonzero write to the key had already SETTLED linearized
//     before the read began and no deletion was ever begun. Writes merely
//     concurrent with the read never convict — the check stays sound under
//     races, it only refuses to miss the steady-state lost update.
//
// The final sweep (after every verdict has settled) tightens to: a key
// must read 0 only if it has no linearized write or has a linearized
// deletion, and must otherwise read some linearized value.
type sharedTracker struct {
	keys []trackedKey
}

type trackedKey struct {
	mu   sync.Mutex
	vals map[int]*writeState

	delBegun      bool
	delLinearized bool
	// settledNonzero counts nonzero writes whose linearized verdict has
	// settled; readers snapshot it (with delBegun) before issuing a read.
	settledNonzero int
}

type writeState struct {
	status   writeStatus
	observed bool
}

type writeStatus int

const (
	writeInflight writeStatus = iota
	writeLinearized
	writeFailed
)

func newSharedTracker(keys int) *sharedTracker {
	t := &sharedTracker{keys: make([]trackedKey, keys)}
	for i := range t.keys {
		t.keys[i].vals = make(map[int]*writeState)
	}
	return t
}

// beginPut registers val (must be nonzero and unique) as in-flight on key k.
func (t *sharedTracker) beginPut(k, val int) {
	tk := &t.keys[k]
	tk.mu.Lock()
	tk.vals[val] = &writeState{status: writeInflight}
	tk.mu.Unlock()
}

// settlePut records val's detectable verdict. It reports a violation when
// a fail-verdict value had already been observed by a read.
func (t *sharedTracker) settlePut(k, val int, linearized bool) (violation bool) {
	tk := &t.keys[k]
	tk.mu.Lock()
	defer tk.mu.Unlock()
	ws := tk.vals[val]
	if linearized {
		ws.status = writeLinearized
		tk.settledNonzero++
		return false
	}
	ws.status = writeFailed
	return ws.observed
}

// beginDel / settleDel track deletions (writes of zero).
func (t *sharedTracker) beginDel(k int) {
	tk := &t.keys[k]
	tk.mu.Lock()
	tk.delBegun = true
	tk.mu.Unlock()
}

func (t *sharedTracker) settleDel(k int, linearized bool) {
	if !linearized {
		return
	}
	tk := &t.keys[k]
	tk.mu.Lock()
	tk.delLinearized = true
	tk.mu.Unlock()
}

// readPre snapshots key k's registry state before a read is issued; the
// snapshot decides whether a zero response can convict.
type readPre struct{ zeroConvicts bool }

func (t *sharedTracker) readBegin(k int) readPre {
	tk := &t.keys[k]
	tk.mu.Lock()
	pre := readPre{zeroConvicts: tk.settledNonzero > 0 && !tk.delBegun}
	tk.mu.Unlock()
	return pre
}

// checkRead validates a linearized read response against the registry,
// reporting whether it is a detectability violation.
func (t *sharedTracker) checkRead(k, resp int, pre readPre) (violation bool) {
	if resp == 0 {
		return pre.zeroConvicts
	}
	tk := &t.keys[k]
	tk.mu.Lock()
	defer tk.mu.Unlock()
	ws, ok := tk.vals[resp]
	if !ok {
		return true // value from nowhere
	}
	if ws.status == writeFailed {
		return true // a definitely-not-linearized write became visible
	}
	ws.observed = true
	return false
}

// checkReadStale validates a read served from a replica's applied view
// under the bounded-staleness contract (docs/REPLICATION.md §read
// replicas). Staleness weakens exactly one conviction: a zero can always
// be explained as a view that predates the key's writes, so zero never
// convicts. Everything else stands at full strength — the replica applies
// only journaled records, and a mutation journals only after linearizing,
// so a phantom value or a failed write's value surfacing at the replica is
// a violation just as it would be at the primary. Observed values are
// marked, so a later fail verdict on a replica-served value still
// convicts.
func (t *sharedTracker) checkReadStale(k, resp int) (violation bool) {
	return t.checkRead(k, resp, readPre{zeroConvicts: false})
}

// checkFinal validates key k's settled value after every verdict has
// landed: zero is allowed only with no linearized write or with a
// linearized deletion, and a nonzero value must be a registered write that
// did not fail. (A still-in-flight value here means some verdict never
// settled — the run already fails on its indefinite count.)
func (t *sharedTracker) checkFinal(k, resp int) (violation bool) {
	tk := &t.keys[k]
	tk.mu.Lock()
	defer tk.mu.Unlock()
	if resp == 0 {
		return tk.settledNonzero > 0 && !tk.delLinearized
	}
	ws, ok := tk.vals[resp]
	return !ok || ws.status == writeFailed
}

// verify folds one worker's operation outcomes into the run's violation
// and indefinite counters, via the per-key write registry in shared (zipf)
// mode or the per-process expected-value map in uniform mode. The key
// index k always indexes the global key list; uniform mode ignores it.
type verify struct {
	tr                     *sharedTracker // shared mode
	exp                    map[string]int // uniform mode
	violations, indefinite *atomic.Uint64
}

func newVerify(tr *sharedTracker, violations, indefinite *atomic.Uint64) *verify {
	v := &verify{tr: tr, violations: violations, indefinite: indefinite}
	if tr == nil {
		v.exp = make(map[string]int)
	}
	return v
}

func (v *verify) readBegin(k int) readPre {
	if v.tr == nil {
		return readPre{}
	}
	return v.tr.readBegin(k)
}

func (v *verify) get(k int, key string, pre readPre, out runtime.Outcome[int]) {
	if !out.Status.Linearized() {
		return
	}
	if v.tr != nil {
		if v.tr.checkRead(k, out.Resp, pre) {
			v.violations.Add(1)
		}
		return
	}
	if out.Resp != v.exp[key] {
		v.violations.Add(1)
	}
}

func (v *verify) beginPut(k, val int) {
	if v.tr != nil {
		v.tr.beginPut(k, val)
	}
}

func (v *verify) put(k int, key string, val int, out runtime.Outcome[int]) {
	if v.tr == nil {
		apply(out, key, val, v.exp, v.violations, v.indefinite)
		return
	}
	switch out.Status {
	case runtime.StatusOK, runtime.StatusRecovered:
		if v.tr.settlePut(k, val, true) {
			v.violations.Add(1)
		}
	case runtime.StatusFailed, runtime.StatusNotInvoked:
		if v.tr.settlePut(k, val, false) {
			v.violations.Add(1)
		}
	default:
		v.indefinite.Add(1)
	}
}

func (v *verify) beginDel(k int) {
	if v.tr != nil {
		v.tr.beginDel(k)
	}
}

func (v *verify) del(k int, key string, out runtime.Outcome[int]) {
	if v.tr == nil {
		apply(out, key, 0, v.exp, v.violations, v.indefinite)
		return
	}
	switch out.Status {
	case runtime.StatusOK, runtime.StatusRecovered:
		v.tr.settleDel(k, true)
	case runtime.StatusFailed, runtime.StatusNotInvoked:
		v.tr.settleDel(k, false)
	default:
		v.indefinite.Add(1)
	}
}
