// Command explore runs the deterministic schedule explorer
// (internal/explore) over the repository's detectable objects: it
// enumerates process interleavings at shared-memory-primitive granularity,
// crossed with system-wide crash points, and checks every execution's
// history for durable linearizability with detectability accounting.
//
// Budgeted exploration over every object (the CI configuration):
//
//	explore -objects all -procs 2 -ops 2 -crashes 1 -preempt 2 -budget 60s -trace-dir traces
//
// A found violation is written to <trace-dir>/<object>.trace.json and the
// command exits non-zero. Replaying a recorded trace:
//
//	explore -replay traces/rcas.trace.json
//
// prints the replayed history, the detectability report and the verdict,
// and exits non-zero if the violation reproduces — so a committed trace
// doubles as a regression test.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"detectable/internal/explore"
)

func main() {
	var (
		objects  = flag.String("objects", "all", "comma-separated harness names ('all' = every registered object; see -list)")
		list     = flag.Bool("list", false, "list the registered harnesses and exit")
		procs    = flag.Int("procs", 2, "processes per explored execution")
		ops      = flag.Int("ops", 2, "operations per process")
		crashes  = flag.Int("crashes", 1, "per-execution budget of injected system-wide crashes")
		preempt  = flag.Int("preempt", 2, "preemption bound for iterative deepening (-1 = deepen until exhausted)")
		execs    = flag.Int("execs", 0, "cap on executions per object (0 = unlimited)")
		budget   = flag.Duration("budget", 30*time.Second, "total wall-clock budget, split evenly across objects (0 = unlimited)")
		traceDir = flag.String("trace-dir", "", "directory to write counterexample traces into (created if missing)")
		replay   = flag.String("replay", "", "replay the trace in this JSON file instead of exploring")
		verbose  = flag.Bool("v", false, "per-object statistics")
	)
	flag.Parse()

	if *list {
		for _, h := range explore.Harnesses() {
			fmt.Println(h.Name)
		}
		return
	}
	if *replay != "" {
		os.Exit(replayFile(*replay))
	}

	var hs []explore.Harness
	if *objects == "all" {
		hs = explore.Harnesses()
	} else {
		for _, name := range strings.Split(*objects, ",") {
			h, err := explore.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			hs = append(hs, h)
		}
	}
	deadline := time.Time{}
	if *budget > 0 {
		deadline = time.Now().Add(*budget)
	}

	fmt.Printf("explore: %d object(s), %d procs x %d ops, <=%d crash(es), preemption bound %d, %v total\n",
		len(hs), *procs, *ops, *crashes, *preempt, *budget)

	failed := false
	for i, h := range hs {
		// Split the remaining budget over the remaining objects, so time a
		// fast-exhausting object leaves unused flows to the deeper ones.
		perObject := time.Duration(0)
		if !deadline.IsZero() {
			perObject = time.Until(deadline) / time.Duration(len(hs)-i)
			if perObject <= 0 {
				perObject = time.Millisecond // expired: 0 would mean unlimited
			}
		}
		prog := h.DefaultProgram(*procs, *ops)
		res := explore.Run(h, prog, explore.Options{
			MaxCrashes:     *crashes,
			MaxPreemptions: *preempt,
			MaxExecutions:  *execs,
			Budget:         perObject,
		})
		status := "ok"
		switch {
		case res.Err != nil:
			status = "ERROR"
		case res.Counterexample != nil:
			status = "VIOLATION"
		case res.Exhausted:
			status = "ok (exhausted)"
		case res.Complete:
			status = fmt.Sprintf("ok (complete at bound %d)", res.Stats.Bound)
		default:
			status = fmt.Sprintf("ok (budget stop at bound %d)", res.Stats.Bound)
		}
		fmt.Printf("%-8s %9d execs  %7.3fs  %s\n", h.Name, res.Stats.Executions, res.Elapsed.Seconds(), status)
		if *verbose {
			fmt.Printf("         passes=%d cutoffs=%d sleep-skips=%d preempt-skips=%d\n",
				res.Stats.Passes, res.Stats.Cutoffs, res.Stats.SleepSkips, res.Stats.PreemptSkips)
		}
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "explore: %s: %v\n", h.Name, res.Err)
			failed = true
		}
		if cx := res.Counterexample; cx != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "explore: %s: durable-linearizability violation\n  %s\n", h.Name, cx)
			if *traceDir != "" {
				if path, err := writeTrace(*traceDir, h.Name, cx); err != nil {
					fmt.Fprintf(os.Stderr, "explore: writing trace: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "  trace written to %s (replay with: explore -replay %s)\n", path, path)
				}
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeTrace stores a counterexample as JSON under dir.
func writeTrace(dir, object string, cx *explore.Trace) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := cx.Marshal()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, object+".trace.json")
	return path, os.WriteFile(path, b, 0o644)
}

// replayFile re-executes a recorded trace and reports the verdict. Exit
// status: 0 when the history is linearizable, 1 when the violation
// reproduces, 2 on malformed input.
func replayFile(path string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	t, err := explore.UnmarshalTrace(b)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("replaying %s\n", t)
	rr, err := explore.Replay(t)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Println("history:")
	for i, e := range rr.Events {
		fmt.Printf("%4d %s\n", i, e)
	}
	fmt.Printf("report: completed=%d recovered=%d failed=%d pending=%d crashes=%d\n",
		rr.Report.Completed, rr.Report.Recovered, rr.Report.Failed, rr.Report.Pending, rr.Report.Crashes)
	if rr.Linearizable {
		fmt.Println("verdict: durably linearizable (no violation)")
		return 0
	}
	fmt.Println("verdict: NOT durably linearizable — violation reproduced")
	return 1
}
