// Command perturb reproduces the paper's object classification (E6,
// Lemmas 3–8 plus the appendix separations): for each object it reports
// whether a doubly-perturbing witness exists (Definition 3) and the
// object's perturbation depth (bounded depth ⇒ not perturbable in the
// Jayanti sense).
//
// Usage:
//
//	perturb [-domain 3] [-depth 5]
package main

import (
	"flag"
	"fmt"
	"os"

	"detectable/internal/perturb"
	"detectable/internal/spec"
)

func main() {
	domain := flag.Int("domain", 3, "value domain size for the bounded search")
	depth := flag.Int("depth", 5, "history length bound")
	flag.Parse()
	if err := run(*domain, *depth); err != nil {
		fmt.Fprintln(os.Stderr, "perturb:", err)
		os.Exit(1)
	}
}

type entry struct {
	obj    spec.Object
	setup  []spec.Operation
	family func(i int) spec.Operation
	probe  spec.Operation
	lemma  string
}

func run(domain, depth int) error {
	const cap = 50

	// A queue prefilled with distinct values lets successive dequeues keep
	// changing a probe dequeue's response (Jayanti-style perturbation).
	var queueSetup []spec.Operation
	for i := 1; i <= cap+2; i++ {
		queueSetup = append(queueSetup, spec.NewOp(spec.MethodEnq, i))
	}

	entries := []entry{
		{spec.Register{}, nil,
			func(i int) spec.Operation { return spec.NewOp(spec.MethodWrite, i) },
			spec.NewOp(spec.MethodRead), "Lemma 3"},
		{spec.MaxRegister{}, nil,
			func(i int) spec.Operation { return spec.NewOp(spec.MethodWriteMax, i) },
			spec.NewOp(spec.MethodRead), "Lemma 4"},
		{spec.Counter{}, nil,
			func(int) spec.Operation { return spec.NewOp(spec.MethodInc) },
			spec.NewOp(spec.MethodRead), "Lemma 5"},
		{spec.Counter{Bound: 2}, nil,
			func(int) spec.Operation { return spec.NewOp(spec.MethodInc) },
			spec.NewOp(spec.MethodRead), "Lemma 5 (appendix)"},
		{spec.CAS{}, nil,
			func(i int) spec.Operation {
				if i%2 == 1 {
					return spec.NewOp(spec.MethodCAS, 0, 1)
				}
				return spec.NewOp(spec.MethodCAS, 1, 0)
			},
			spec.NewOp(spec.MethodRead), "Lemma 6"},
		{spec.FAA{}, nil,
			func(int) spec.Operation { return spec.NewOp(spec.MethodFAA, 1) },
			spec.NewOp(spec.MethodRead), "Lemma 7"},
		{spec.Queue{}, queueSetup,
			func(int) spec.Operation { return spec.NewOp(spec.MethodDeq) },
			spec.NewOp(spec.MethodDeq), "Lemma 8"},
	}

	fmt.Printf("%-16s %-20s %-10s %-14s %s\n",
		"object", "doubly-perturbing", "depth", "perturbable", "reference")
	for _, e := range entries {
		res := perturb.FindDoublyPerturbing(e.obj, domain, depth)
		dp := "no"
		if res.Doubly {
			dp = "yes"
		} else if res.Exhaustive {
			dp = "no (exhaustive)"
		} else {
			dp = "no (bounded)"
		}
		d := perturb.PerturbationDepth(e.obj, e.setup, e.family, e.probe, cap)
		depthStr := fmt.Sprint(d)
		pert := "bounded"
		if d >= cap {
			depthStr = fmt.Sprintf("≥%d", cap)
			pert = "yes"
		}
		fmt.Printf("%-16s %-20s %-10s %-14s %s\n", e.obj.Name(), dp, depthStr, pert, e.lemma)
		if res.Doubly {
			fmt.Printf("%-16s   witness: %s\n", "", res.Witness)
		}
	}
	fmt.Println()
	fmt.Println("Theorem 2 applies to every doubly-perturbing object above: any")
	fmt.Println("obstruction-free detectable implementation must receive auxiliary state.")
	fmt.Println("The max register (not doubly-perturbing) escapes it — see Algorithm 3.")
	return nil
}
