// Command kvserverd serves the sharded detectable key-value store over TCP
// using the session protocol of internal/server (docs/PROTOCOL.md): each
// client session leases one process slot of the store's N-process model,
// and a client that reconnects after a dropped connection can re-issue its
// in-flight request ID and receive the original detectable verdict.
//
// With -data the daemon is durable (docs/DURABILITY.md): every shard's
// linearized mutations and every session's outcome window are journaled to
// CRC-framed record logs under the data directory, fsynced before verdicts
// are released. On startup the daemon recovers all shards and session
// windows from disk (truncating torn or corrupted log tails to the last
// valid prefix), so even a SIGKILL of the whole process preserves
// exactly-once detectability: a resumed client still receives the original
// verdict. The directory's geometry manifest is enforced — reopening with
// different -shards/-procs is refused.
//
// Usage:
//
//	kvserverd [-addr :7070] [-shards 4] [-procs 8] [-data dir] [-dur 0]
//	          [-group-commit] [-epoch-interval 0] [-locked-keytable]
//	          [-replica-of addr] [-promote] [-v]
//
// With -replica-of the daemon starts as a warm standby (requires -data):
// it feeds its durable directory from the primary's replication stream,
// acks every commit barrier (the primary releases verdicts only after
// both nodes fsynced — docs/REPLICATION.md), and serves only observer
// sessions until promoted. -promote is an admin verb, not a server mode:
// it connects to -addr as an observer, issues PROMOTE, prints the fencing
// generation and exits — promoting a standby into the serving primary, or
// fencing a node that is already primary.
//
// -locked-keytable swaps each shard's lock-free copy-on-write key table
// for the RWMutex-guarded baseline; it exists only so benchmark sweeps
// (BENCH_PR8.json) can measure both sides through the same served path.
//
// With -group-commit (the default when durable), concurrent commits
// coalesce into epochs sharing one fsync pair: every mutating reply is
// released on its epoch's boundary, after the fsync that anchors it, so
// detectability is never weakened — N writers just split the cost of the
// barrier instead of each paying it. -epoch-interval adds a batching
// window before each epoch anchors, trading reply latency for wider
// batches; 0 anchors as soon as the committer is free.
//
// -dur 0 serves until SIGINT/SIGTERM; a positive duration serves for that
// long and exits (used by smoke tests). On shutdown the daemon prints the
// aggregate operation/verdict/crash counters.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"detectable/internal/client"
	"detectable/internal/durable"
	"detectable/internal/server"
	"detectable/internal/shardkv"
)

func main() {
	addr := flag.String("addr", ":7070", "TCP listen address")
	shards := flag.Int("shards", 4, "number of independent shards")
	procs := flag.Int("procs", 8, "process slots (max concurrent non-observer sessions)")
	data := flag.String("data", "", "durable data directory (empty = in-memory only; state dies with the process)")
	dur := flag.Duration("dur", 0, "serve duration (0 = until SIGINT/SIGTERM)")
	groupCommit := flag.Bool("group-commit", true, "coalesce concurrent commits into epochs sharing one fsync pair")
	epochInterval := flag.Duration("epoch-interval", 0, "group-commit batching window (0 = anchor epochs immediately)")
	lockedTable := flag.Bool("locked-keytable", false, "use the RWMutex-guarded key table instead of the lock-free copy-on-write one (benchmark baseline)")
	replicaOf := flag.String("replica-of", "", "start as a warm standby replicating from the primary at this address (requires -data)")
	promote := flag.Bool("promote", false, "admin verb: ask the server at -addr to promote (standby → primary, primary → fenced) and exit")
	verbose := flag.Bool("v", false, "print the per-shard breakdown on shutdown")
	flag.Parse()
	if *promote {
		if err := runPromote(*addr); err != nil {
			fmt.Fprintln(os.Stderr, "kvserverd:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*addr, *shards, *procs, *data, *dur, *groupCommit, *epochInterval, *lockedTable, *replicaOf, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "kvserverd:", err)
		os.Exit(1)
	}
}

// runPromote issues PROMOTE over an observer session and reports the
// fencing generation the node now serves (or refuses) under.
func runPromote(addr string) error {
	c, err := client.DialObserver(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	gen, err := c.Promote()
	if err != nil {
		return err
	}
	fmt.Printf("kvserverd: promoted %s generation=%d\n", addr, gen)
	return nil
}

func run(addr string, shards, procs int, data string, dur time.Duration, groupCommit bool, epochInterval time.Duration, lockedTable bool, replicaOf string, verbose bool) error {
	if shards < 1 || procs < 1 {
		return fmt.Errorf("need shards ≥ 1 and procs ≥ 1 (got shards=%d procs=%d)", shards, procs)
	}
	if replicaOf != "" && data == "" {
		return fmt.Errorf("-replica-of needs -data: the standby mirrors the primary into a durable directory")
	}

	var (
		db  *durable.DB
		err error
	)
	opts := []shardkv.Option{}
	if lockedTable {
		opts = append(opts, shardkv.LockedKeyTable())
	}
	if data != "" {
		if db, err = durable.Open(data, shards, procs, server.Window); err != nil {
			return err
		}
		defer db.Close()
		opts = append(opts, shardkv.Durable(db))
	}
	var srv *server.Server
	if replicaOf != "" {
		srv = server.NewStandby(db, func() *shardkv.Store { return shardkv.New(shards, procs, opts...) })
		if groupCommit {
			db.StartGroupCommit(epochInterval)
		}
		if err := srv.StartReplication(replicaOf); err != nil {
			return err
		}
		go func() {
			<-srv.Promoted()
			fmt.Printf("kvserverd: promoted to primary generation=%d\n", db.Generation())
		}()
	} else {
		store := shardkv.New(shards, procs, opts...)
		srv = server.New(store)
		if db != nil {
			if err := srv.AttachDurable(db); err != nil {
				return err
			}
			keys := 0
			for i := 0; i < shards; i++ {
				db.RangeShard(i, func(string, int64) { keys++ })
			}
			fmt.Printf("kvserverd: recovered data=%s keys=%d sessions=%d\n", data, keys, srv.Sessions())
			if groupCommit {
				db.StartGroupCommit(epochInterval)
			}
		}
	}
	if err := srv.Listen(addr); err != nil {
		return err
	}
	if replicaOf != "" {
		fmt.Printf("kvserverd: standby addr=%s shards=%d procs=%d replicating-from=%s\n",
			srv.Addr(), shards, procs, replicaOf)
	} else {
		fmt.Printf("kvserverd: serving addr=%s shards=%d procs=%d durable=%v group-commit=%v\n",
			srv.Addr(), shards, procs, db != nil, db != nil && groupCommit)
	}

	if dur > 0 {
		time.Sleep(dur)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("kvserverd: shutting down")
	}
	if err := srv.Close(); err != nil {
		return err
	}
	if db != nil {
		db.StopGroupCommit()
		if err := db.Sync(); err != nil {
			return err
		}
		if epochs, commits := db.GroupCommitStats(); epochs > 0 {
			fmt.Printf("group-commit: epochs=%d commits=%d (%.1f commits/fsync)\n",
				epochs, commits, float64(commits)/float64(epochs))
		}
	}

	store := srv.Store() // nil for a standby that was never promoted
	if store == nil {
		fmt.Println("standby: shut down before promotion (no data served)")
		return nil
	}
	t := store.TotalStats()
	fmt.Printf("served: %d ops — gets=%d puts=%d dels=%d\n", t.Ops(), t.Gets, t.Puts, t.Dels)
	fmt.Printf("verdicts: ok=%d recovered=%d failed=%d not-invoked=%d\n", t.OK, t.Recovered, t.Failed, t.NotInvoked)
	fmt.Printf("crashes: injected=%d interruptions-observed=%d\n", t.CrashesInjected, t.CrashesSeen)
	if verbose {
		for i, st := range store.Snapshots() {
			fmt.Printf("shard %d: ops=%d recovered=%d failed=%d crashes=%d\n",
				i, st.Ops(), st.Recovered, st.Failed, st.CrashesInjected)
		}
	}
	return nil
}
