// Command kvserverd serves the sharded detectable key-value store over TCP
// using the session protocol of internal/server (docs/PROTOCOL.md): each
// client session leases one process slot of the store's N-process model,
// and a client that reconnects after a dropped connection can re-issue its
// in-flight request ID and receive the original detectable verdict.
//
// Usage:
//
//	kvserverd [-addr :7070] [-shards 4] [-procs 8] [-dur 0] [-v]
//
// -dur 0 serves until SIGINT/SIGTERM; a positive duration serves for that
// long and exits (used by smoke tests). On shutdown the daemon prints the
// aggregate operation/verdict/crash counters.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"detectable/internal/server"
	"detectable/internal/shardkv"
)

func main() {
	addr := flag.String("addr", ":7070", "TCP listen address")
	shards := flag.Int("shards", 4, "number of independent shards")
	procs := flag.Int("procs", 8, "process slots (max concurrent non-observer sessions)")
	dur := flag.Duration("dur", 0, "serve duration (0 = until SIGINT/SIGTERM)")
	verbose := flag.Bool("v", false, "print the per-shard breakdown on shutdown")
	flag.Parse()
	if err := run(*addr, *shards, *procs, *dur, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "kvserverd:", err)
		os.Exit(1)
	}
}

func run(addr string, shards, procs int, dur time.Duration, verbose bool) error {
	if shards < 1 || procs < 1 {
		return fmt.Errorf("need shards ≥ 1 and procs ≥ 1 (got shards=%d procs=%d)", shards, procs)
	}
	store := shardkv.New(shards, procs)
	srv := server.New(store)
	if err := srv.Listen(addr); err != nil {
		return err
	}
	fmt.Printf("kvserverd: serving addr=%s shards=%d procs=%d\n", srv.Addr(), shards, procs)

	if dur > 0 {
		time.Sleep(dur)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("kvserverd: shutting down")
	}
	if err := srv.Close(); err != nil {
		return err
	}

	t := store.TotalStats()
	fmt.Printf("served: %d ops — gets=%d puts=%d dels=%d\n", t.Ops(), t.Gets, t.Puts, t.Dels)
	fmt.Printf("verdicts: ok=%d recovered=%d failed=%d not-invoked=%d\n", t.OK, t.Recovered, t.Failed, t.NotInvoked)
	fmt.Printf("crashes: injected=%d interruptions-observed=%d\n", t.CrashesInjected, t.CrashesSeen)
	if verbose {
		for i, st := range store.Snapshots() {
			fmt.Printf("shard %d: ops=%d recovered=%d failed=%d crashes=%d\n",
				i, st.Ops(), st.Recovered, st.Failed, st.CrashesInjected)
		}
	}
	return nil
}
