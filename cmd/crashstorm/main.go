// Command crashstorm stress-tests the detectable objects under randomized
// concurrent workloads with crash storms, validating every round's history
// for durable linearizability with detectability accounting (E1/E2/E6
// empirical side).
//
// Usage:
//
//	crashstorm [-obj rw|cas|queue|maxreg] [-procs 3] [-rounds 20] [-ops 5] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"detectable/internal/linearize"
	"detectable/internal/maxreg"
	"detectable/internal/nvm"
	"detectable/internal/queue"
	"detectable/internal/rcas"
	"detectable/internal/runtime"
	"detectable/internal/rw"
	"detectable/internal/spec"
)

func main() {
	obj := flag.String("obj", "cas", "object under test: rw, cas, queue or maxreg")
	procs := flag.Int("procs", 3, "concurrent processes")
	rounds := flag.Int("rounds", 20, "independent rounds (one history check each)")
	ops := flag.Int("ops", 5, "operations per process per round")
	seed := flag.Int64("seed", 1, "randomness seed")
	flag.Parse()
	if err := run(*obj, *procs, *rounds, *ops, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "crashstorm:", err)
		os.Exit(1)
	}
}

func run(obj string, procs, rounds, ops int, seed int64) error {
	if procs*ops > 60 {
		return fmt.Errorf("procs*ops = %d exceeds the history checker's 60-op budget", procs*ops)
	}
	var total linearize.Report
	for round := 0; round < rounds; round++ {
		sys := runtime.NewSystem(procs)
		worker, specObj, err := workload(obj, sys)
		if err != nil {
			return err
		}

		stop := make(chan struct{})
		var storm sync.WaitGroup
		storm.Add(1)
		go func() {
			defer storm.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				if i%1000 == 0 {
					sys.Crash()
				}
			}
		}()

		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(round*97+pid)))
				for i := 0; i < ops; i++ {
					worker(pid, rng)
				}
			}(p)
		}
		wg.Wait()
		close(stop)
		storm.Wait()

		ok, rep, err := linearize.CheckLog(specObj, sys.Log())
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		if !ok {
			return fmt.Errorf("round %d: history NOT durably linearizable:\n%s", round, sys.Log())
		}
		total.Completed += rep.Completed
		total.Recovered += rep.Recovered
		total.Failed += rep.Failed
		total.Pending += rep.Pending
		total.Crashes += rep.Crashes
	}

	fmt.Printf("object=%s procs=%d rounds=%d ops/proc=%d: all histories durably linearizable\n",
		obj, procs, rounds, ops)
	fmt.Printf("  completed=%d recovered=%d failed=%d crashes=%d\n",
		total.Completed, total.Recovered, total.Failed, total.Crashes)
	return nil
}

// workload returns a per-process op driver and the matching sequential
// specification.
func workload(obj string, sys *runtime.System) (func(int, *rand.Rand), spec.Object, error) {
	switch obj {
	case "rw":
		reg := rw.NewInt(sys, 0)
		return func(pid int, rng *rand.Rand) {
			if rng.Intn(2) == 0 {
				reg.Write(pid, rng.Intn(5), randPlan(rng))
			} else {
				reg.Read(pid, randPlan(rng))
			}
		}, spec.Register{}, nil
	case "cas":
		o := rcas.NewInt(sys, 0)
		return func(pid int, rng *rand.Rand) {
			if rng.Intn(3) == 0 {
				o.Read(pid, randPlan(rng))
			} else {
				o.Cas(pid, rng.Intn(3), rng.Intn(3), randPlan(rng))
			}
		}, spec.CAS{}, nil
	case "queue":
		q := queue.New(sys)
		next := make(chan int, 1)
		next <- 1
		return func(pid int, rng *rand.Rand) {
			if rng.Intn(2) == 0 {
				v := <-next
				next <- v + 1
				q.Enq(pid, v, randPlan(rng))
			} else {
				q.Deq(pid, randPlan(rng))
			}
		}, spec.Queue{}, nil
	case "maxreg":
		m := maxreg.New(sys)
		return func(pid int, rng *rand.Rand) {
			if rng.Intn(2) == 0 {
				m.WriteMax(pid, rng.Intn(40), randPlan(rng))
			} else {
				m.Read(pid, randPlan(rng))
			}
		}, spec.MaxRegister{}, nil
	default:
		return nil, nil, fmt.Errorf("unknown object %q (want rw, cas, queue or maxreg)", obj)
	}
}

func randPlan(rng *rand.Rand) nvm.CrashPlan {
	if rng.Intn(3) != 0 {
		return nvm.NeverCrash()
	}
	return nvm.CrashAtStep(uint64(1 + rng.Intn(12)))
}
