// Command kvbench is a closed-loop benchmark client for the detectable KV
// server: for each requested connection count it opens that many sessions,
// drives one synchronous operation stream per session for the configured
// duration, and reports aggregate throughput plus p50/p99 operation
// latency.
//
// Usage:
//
//	kvbench -addr host:port [-conns 1,4] [-dur 2s] [-keys 512] [-getpct 50]
//	kvbench -selftest [-shards 4] [-conns 1,4] ...
//
// -selftest starts an in-process kvserverd-equivalent on a loopback port
// and benches that (still over real TCP), so the binary is runnable with
// no external server — smoke tests use it.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"detectable/internal/client"
	"detectable/internal/server"
	"detectable/internal/shardkv"
)

func main() {
	addr := flag.String("addr", "", "server address (host:port)")
	selftest := flag.Bool("selftest", false, "start an in-process server on a loopback port and bench it")
	shards := flag.Int("shards", 4, "shards for the -selftest server")
	connsFlag := flag.String("conns", "1,4", "comma-separated connection counts to bench")
	dur := flag.Duration("dur", 2*time.Second, "measured duration per connection count")
	keys := flag.Int("keys", 512, "key-space size")
	getPct := flag.Int("getpct", 50, "percentage of operations that are reads")
	seed := flag.Int64("seed", 1, "randomness seed")
	flag.Parse()
	if err := run(*addr, *selftest, *shards, *connsFlag, *dur, *keys, *getPct, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "kvbench:", err)
		os.Exit(1)
	}
}

func run(addr string, selftest bool, shards int, connsFlag string, dur time.Duration, keys, getPct int, seed int64) error {
	connCounts, err := parseConns(connsFlag)
	if err != nil {
		return err
	}
	if (addr == "") == !selftest {
		return fmt.Errorf("exactly one of -addr and -selftest is required")
	}
	if keys < 1 || getPct < 0 || getPct > 100 {
		return fmt.Errorf("need keys ≥ 1 and 0 ≤ getpct ≤ 100")
	}

	if selftest {
		maxConns := 0
		for _, n := range connCounts {
			if n > maxConns {
				maxConns = n
			}
		}
		srv := server.New(shardkv.New(shards, maxConns))
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			return err
		}
		defer srv.Close()
		addr = srv.Addr().String()
		fmt.Printf("selftest server: addr=%s shards=%d procs=%d\n", addr, shards, maxConns)
	}

	fmt.Printf("target=%s dur=%s keys=%d getpct=%d\n", addr, dur, keys, getPct)
	for _, n := range connCounts {
		if err := benchPhase(addr, n, dur, keys, getPct, seed); err != nil {
			return fmt.Errorf("conns=%d: %w", n, err)
		}
	}
	return nil
}

// benchPhase runs one closed loop per connection for dur and prints one
// report line.
func benchPhase(addr string, conns int, dur time.Duration, keys, getPct int, seed int64) error {
	clients := make([]*client.Client, conns)
	for i := range clients {
		c, err := client.Dial(addr)
		if err != nil {
			return fmt.Errorf("dial %d: %w", i, err)
		}
		defer c.Close()
		clients[i] = c
	}

	lats := make([][]time.Duration, conns) // per-worker, merged after the run
	errs := make([]error, conns)
	deadline := time.Now().Add(dur)
	start := time.Now()
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)*7919))
			for time.Now().Before(deadline) {
				key := "bench-" + strconv.Itoa(rng.Intn(keys))
				opStart := time.Now()
				var err error
				if rng.Intn(100) < getPct {
					_, err = c.Get(key)
				} else {
					_, err = c.Put(key, rng.Int())
				}
				if err != nil {
					errs[i] = err
					return
				}
				lats[i] = append(lats[i], time.Since(opStart))
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return fmt.Errorf("no operations completed")
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	fmt.Printf("conns=%d ops=%d throughput=%.0f ops/sec p50=%s p99=%s max=%s\n",
		conns, len(all), float64(len(all))/elapsed.Seconds(),
		percentile(all, 50), percentile(all, 99), all[len(all)-1])
	return nil
}

// percentile returns the p-th percentile of sorted latencies.
func percentile(sorted []time.Duration, p int) time.Duration {
	i := (len(sorted)*p + 99) / 100
	if i > 0 {
		i--
	}
	return sorted[i]
}

// parseConns parses "1,4,16" into connection counts.
func parseConns(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -conns element %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-conns is empty")
	}
	return out, nil
}
