// Command kvbench is a benchmark client for the detectable KV server: for
// each requested connection count it opens that many sessions, drives one
// operation stream per session for the configured duration, and reports
// aggregate throughput plus p50/p99 operation latency.
//
// Two load models:
//
//   - Closed loop (default): each connection issues the next request the
//     moment the previous reply lands. Throughput is whatever the server
//     sustains; latency percentiles describe only the server's service
//     time.
//   - Paced (-rate R): each connection issues R requests/sec on a fixed
//     schedule, and every operation's latency is measured from its
//     *intended* start time, not from when the request actually got sent.
//     A slow reply that delays the requests queued behind it therefore
//     charges that queueing delay to those requests — the standard fix for
//     coordinated omission, where a closed loop silently stops sampling
//     exactly while the server is at its worst. Paced percentiles are the
//     ones that predict what an open workload would experience.
//
// Against a durable server, mutation replies wait for the commit barrier,
// so -getpct 10 (write-heavy) with -rate exposes the fsync schedule
// directly: per-mutation fsync charges every put a sync, group commit
// amortizes one sync across an epoch.
//
// Usage:
//
//	kvbench -addr host:port [-conns 1,4] [-dur 2s] [-keys 512] [-getpct 50]
//	        [-dist uniform|zipf] [-theta 0.99]
//	        [-rate 2000] [-mput 16] [-json out.json -label run]
//	kvbench -selftest [-shards 4] ...
//	kvbench -server-bin ./kvserverd [-data dir] [-server-args "-epoch-interval 2ms"] ...
//
// -selftest starts an in-process non-durable server on a loopback port and
// benches that (still over real TCP), so the binary is runnable with no
// external daemon — smoke tests use it. -server-bin instead spawns a real
// kvserverd (durable when -data is given or defaulted to a temp dir) and
// benches the full served path; -server-args passes extra flags through,
// which is how the BENCH_PR6.json group-commit-vs-per-mutation-fsync runs
// are produced. -json appends this run's phases under -label into a JSON
// document, merging with the file's existing runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	goruntime "runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"detectable/internal/client"
	"detectable/internal/server"
	"detectable/internal/shardkv"
	"detectable/internal/workload"
)

func main() {
	addr := flag.String("addr", "", "server address (host:port)")
	selftest := flag.Bool("selftest", false, "start an in-process server on a loopback port and bench it")
	serverBin := flag.String("server-bin", "", "spawn this kvserverd binary on a loopback port and bench it")
	dataDir := flag.String("data", "", "durable data directory for -server-bin (empty = fresh temp dir)")
	serverArgs := flag.String("server-args", "", "extra kvserverd flags for -server-bin, space-separated")
	shards := flag.Int("shards", 4, "shards for the -selftest or -server-bin server")
	replica := flag.Bool("replica", false, "with -server-bin: also spawn a warm standby replicating from the primary, so the bench measures the synchronous-replication serving path")
	readReplica := flag.Bool("read-replica", false, "with -server-bin: bench GET throughput through read-only sessions, primary-only vs split across primary+standby (BENCH_PR10)")
	connsFlag := flag.String("conns", "1,4", "comma-separated connection counts to bench")
	dur := flag.Duration("dur", 2*time.Second, "measured duration per connection count")
	keys := flag.Int("keys", 512, "key-space size")
	getPct := flag.Int("getpct", 50, "percentage of operations that are reads")
	dist := flag.String("dist", "uniform", "key distribution: uniform or zipf (rank 0 hottest)")
	theta := flag.Float64("theta", 0.99, "Zipfian skew exponent for -dist zipf")
	mput := flag.Int("mput", 0, "batch writes: each write is an MPUT of this many entries (0 = single puts)")
	rate := flag.Float64("rate", 0, "paced mode: requests/sec per connection, latency from intended start (0 = closed loop)")
	jsonOut := flag.String("json", "", "merge this run's results into this JSON file under -label")
	label := flag.String("label", "run", "run name for -json")
	seed := flag.Int64("seed", 1, "randomness seed")
	flag.Parse()
	var err error
	if *readReplica {
		var connCounts []int
		if connCounts, err = parseConns(*connsFlag); err == nil {
			err = runReadReplicaBench(*serverBin, *dataDir, *serverArgs, *shards, connCounts,
				*dur, *keys, *dist, *theta, *seed, *jsonOut)
		}
	} else {
		err = run(*addr, *selftest, *serverBin, *dataDir, *serverArgs, *shards, *replica, *connsFlag,
			*dur, *keys, *getPct, *dist, *theta, *mput, *rate, *jsonOut, *label, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvbench:", err)
		os.Exit(1)
	}
}

// phaseResult is one connection count's measurement. ReplicaConns and
// ReplicaOps appear only in -read-replica phases: how many of the
// connections targeted the standby and how many operations it served.
type phaseResult struct {
	Conns        int     `json:"conns"`
	ReplicaConns int     `json:"replica_conns,omitempty"`
	ReplicaOps   int     `json:"replica_ops,omitempty"`
	RatePerConn  float64 `json:"rate_per_conn,omitempty"`
	Ops          int     `json:"ops"`
	Throughput   float64 `json:"throughput_ops_sec"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
	MaxNs        int64   `json:"max_ns"`
}

// runSection is one labeled run in the -json document.
type runSection struct {
	Generated  string        `json:"generated"`
	Go         string        `json:"go"`
	GetPct     int           `json:"getpct"`
	Dist       string        `json:"dist,omitempty"`
	Theta      float64       `json:"theta,omitempty"`
	MPut       int           `json:"mput,omitempty"`
	Keys       int           `json:"keys"`
	DurSec     float64       `json:"dur_sec"`
	ServerArgs string        `json:"server_args,omitempty"`
	Phases     []phaseResult `json:"phases"`
}

// jsonDoc is the whole -json file: labeled runs over one served workload.
type jsonDoc struct {
	Schema string                 `json:"schema"`
	Runs   map[string]*runSection `json:"runs"`
}

func run(addr string, selftest bool, serverBin, dataDir, serverArgs string, shards int, replica bool, connsFlag string,
	dur time.Duration, keys, getPct int, dist string, theta float64, mput int, rate float64,
	jsonOut, label string, seed int64) error {
	connCounts, err := parseConns(connsFlag)
	if err != nil {
		return err
	}
	if dist != "uniform" && dist != "zipf" {
		return fmt.Errorf("unknown -dist %q (want uniform or zipf)", dist)
	}
	if theta < 0 {
		return fmt.Errorf("need -theta ≥ 0 (got %g)", theta)
	}
	modes := 0
	for _, on := range []bool{addr != "", selftest, serverBin != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("exactly one of -addr, -selftest and -server-bin is required")
	}
	if replica && serverBin == "" {
		return fmt.Errorf("-replica needs -server-bin (the bench spawns the standby itself)")
	}
	if keys < 1 || getPct < 0 || getPct > 100 || mput < 0 || rate < 0 {
		return fmt.Errorf("need keys ≥ 1, 0 ≤ getpct ≤ 100, mput ≥ 0, rate ≥ 0")
	}

	maxConns := 0
	for _, n := range connCounts {
		if n > maxConns {
			maxConns = n
		}
	}
	switch {
	case selftest:
		srv := server.New(shardkv.New(shards, maxConns))
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			return err
		}
		defer srv.Close()
		addr = srv.Addr().String()
		fmt.Printf("selftest server: addr=%s shards=%d procs=%d\n", addr, shards, maxConns)
	case serverBin != "":
		if dataDir == "" {
			d, err := os.MkdirTemp("", "kvbench-data-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(d)
			dataDir = d
		}
		a, stop, err := spawnServer(serverBin, dataDir, serverArgs, shards, maxConns)
		if err != nil {
			return err
		}
		defer stop()
		addr = a
		fmt.Printf("spawned server: addr=%s shards=%d procs=%d data=%s args=%q\n", addr, shards, maxConns, dataDir, serverArgs)
		if replica {
			rd, err := os.MkdirTemp("", "kvbench-replica-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(rd)
			_, stopR, err := spawnServer(serverBin, rd, serverArgs+" -replica-of "+addr, shards, maxConns)
			if err != nil {
				return fmt.Errorf("spawning replica: %w", err)
			}
			defer stopR()
			if err := waitReplicaSynced(addr, 15*time.Second); err != nil {
				return fmt.Errorf("replica never synced: %w", err)
			}
			fmt.Printf("replica attached: every mutation reply now waits for both nodes' fsync\n")
		}
	}

	fmt.Printf("target=%s dur=%s keys=%d getpct=%d dist=%s theta=%g mput=%d rate=%.0f/conn\n",
		addr, dur, keys, getPct, dist, theta, mput, rate)
	sec := &runSection{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Go:         goruntime.Version(),
		GetPct:     getPct,
		Dist:       dist,
		Theta:      theta,
		MPut:       mput,
		Keys:       keys,
		DurSec:     dur.Seconds(),
		ServerArgs: serverArgs,
	}
	for _, n := range connCounts {
		r, err := benchPhase(addr, n, dur, keys, getPct, dist, theta, mput, rate, seed)
		if err != nil {
			return fmt.Errorf("conns=%d: %w", n, err)
		}
		sec.Phases = append(sec.Phases, r)
	}
	if jsonOut != "" {
		return mergeJSON(jsonOut, label, sec)
	}
	return nil
}

// benchPhase runs one stream per connection for dur and prints one report
// line. With rate > 0, each stream issues requests on a fixed schedule and
// measures latency from the intended start time (coordinated-omission
// corrected); with rate == 0 it is a closed loop timing only service time.
func benchPhase(addr string, conns int, dur time.Duration, keys, getPct int, dist string, theta float64,
	mput int, rate float64, seed int64) (phaseResult, error) {
	clients := make([]*client.Client, conns)
	for i := range clients {
		c, err := client.Dial(addr)
		if err != nil {
			return phaseResult{}, fmt.Errorf("dial %d: %w", i, err)
		}
		defer c.Close()
		clients[i] = c
	}

	// Warm the key space on one connection before timing anything:
	// creating a key's register is a one-time allocation of the paper's
	// announce structure — O(procs²) NVM cells, milliseconds at high slot
	// counts — and billing it to the measured window would swamp the
	// serving costs (fsync schedule, batching) the bench compares.
	{
		const chunk = 64
		warm := make([]shardkv.KV, 0, chunk)
		for k := 0; k < keys; k += chunk {
			warm = warm[:0]
			for j := k; j < keys && j < k+chunk; j++ {
				warm = append(warm, shardkv.KV{Key: "bench-" + strconv.Itoa(j), Val: 0})
			}
			if _, err := clients[0].MultiPut(warm); err != nil {
				return phaseResult{}, fmt.Errorf("key-space warm-up: %w", err)
			}
		}
	}

	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	lats := make([][]time.Duration, conns) // per-worker, merged after the run
	errs := make([]error, conns)
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workload.WorkerSeed(seed, conns, i)))
			// nextKey is the phase's key chooser: Zipfian rank draw ("bench-0"
			// hottest, concentrating the stream on a few shards) or uniform.
			nextKey := func() string { return "bench-" + strconv.Itoa(rng.Intn(keys)) }
			if dist == "zipf" {
				z := workload.NewZipf(rng, keys, theta)
				nextKey = func() string { return "bench-" + strconv.Itoa(z.Next()) }
			}
			var entries []shardkv.KV
			if mput > 0 {
				entries = make([]shardkv.KV, mput)
			}
			for k := 0; ; k++ {
				// The intended start is the schedule slot in paced mode —
				// never pushed back by a slow predecessor — and "now" in
				// closed-loop mode. Late slots are issued immediately,
				// back to back, until the stream catches up; their
				// latency still counts from the slot time.
				intended := time.Now()
				if interval > 0 {
					intended = start.Add(time.Duration(k) * interval)
					if sleep := time.Until(intended); sleep > 0 {
						time.Sleep(sleep)
					}
				}
				if !intended.Before(deadline) {
					return
				}
				var err error
				switch {
				case rng.Intn(100) < getPct:
					_, err = c.Get(nextKey())
				case mput > 0:
					for j := range entries {
						entries[j] = shardkv.KV{Key: nextKey(), Val: rng.Int()}
					}
					_, err = c.MultiPut(entries)
				default:
					_, err = c.Put(nextKey(), rng.Int())
				}
				if err != nil {
					errs[i] = err
					return
				}
				lats[i] = append(lats[i], time.Since(intended))
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return phaseResult{}, err
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return phaseResult{}, fmt.Errorf("no operations completed")
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	r := phaseResult{
		Conns:       conns,
		RatePerConn: rate,
		Ops:         len(all),
		Throughput:  float64(len(all)) / elapsed.Seconds(),
		P50Ns:       int64(percentile(all, 50)),
		P99Ns:       int64(percentile(all, 99)),
		MaxNs:       int64(all[len(all)-1]),
	}
	fmt.Printf("conns=%d ops=%d throughput=%.0f ops/sec p50=%s p99=%s max=%s\n",
		conns, r.Ops, r.Throughput,
		time.Duration(r.P50Ns), time.Duration(r.P99Ns), time.Duration(r.MaxNs))
	return r, nil
}

// mergeJSON folds sec under label into the JSON document at path, keeping
// any runs already recorded there.
func mergeJSON(path, label string, sec *runSection) error {
	doc := &jsonDoc{Schema: "detectable-served-bench/v1", Runs: map[string]*runSection{}}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, doc); err != nil {
			return fmt.Errorf("parsing existing %s: %w", path, err)
		}
		if doc.Runs == nil {
			doc.Runs = map[string]*runSection{}
		}
	}
	doc.Runs[label] = sec
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// spawnServer launches a kvserverd on a fresh loopback port and returns
// its address plus a stop function (SIGTERM, SIGKILL+reap if it lingers —
// the bench must never leak the child).
func spawnServer(bin, dataDir, extraArgs string, shards, procs int) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	addr := ln.Addr().String()
	ln.Close()

	args := []string{
		"-addr", addr,
		"-shards", strconv.Itoa(shards),
		"-procs", strconv.Itoa(procs),
		"-data", dataDir,
	}
	args = append(args, strings.Fields(extraArgs)...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	stop := func() {
		cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }() //nolint:errcheck
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill() //nolint:errcheck
			<-done
		}
	}

	up := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err == nil {
			conn.Close()
			return addr, stop, nil
		}
		if time.Now().After(up) {
			stop()
			return "", nil, fmt.Errorf("spawned server never came up: %w", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// waitReplicaSynced polls the primary until a replica stream is attached
// and has acked every replication barrier, so the measured window never
// includes the initial snapshot transfer.
func waitReplicaSynced(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		obs, err := client.DialObserver(addr)
		if err == nil {
			st, serr := obs.ServerStats()
			obs.Close() //nolint:errcheck
			if serr == nil && st.Replicas >= 1 && st.ReplSeq > 0 && st.ReplAcked >= st.ReplSeq {
				return nil
			}
			if serr == nil {
				err = fmt.Errorf("replicas=%d seq=%d acked=%d", st.Replicas, st.ReplSeq, st.ReplAcked)
			} else {
				err = serr
			}
		}
		lastErr = err
		if time.Now().After(deadline) {
			return lastErr
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// percentile returns the p-th percentile of sorted latencies.
func percentile(sorted []time.Duration, p int) time.Duration {
	i := (len(sorted)*p + 99) / 100
	if i > 0 {
		i--
	}
	return sorted[i]
}

// parseConns parses "1,4,16" into connection counts.
func parseConns(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -conns element %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-conns is empty")
	}
	return out, nil
}
