package main

import (
	"fmt"
	"math/rand"
	"os"
	goruntime "runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"detectable/internal/client"
	"detectable/internal/shardkv"
	"detectable/internal/workload"
)

// runReadReplicaBench measures read-replica scaling (docs/REPLICATION.md
// §read replicas): a durable primary plus a replicating standby, a light
// continuous write load at the primary so the replication stream is live
// during every measured window, and GET-only read-only sessions as the
// measured traffic. Two sections land in the -json document:
//
//   - "read-primary-only": n read connections, all at the primary — the
//     single-node read capacity under write load.
//   - "read-replica": the same n at the primary plus n more at the
//     standby — the capacity after adding the second node.
//
// The claim under test (and gated in CI against BENCH_PR10.json) is that
// the second node adds read capacity: the split phase's aggregate
// throughput must beat the primary-only phase at the same per-node
// connection count, and the replica must have served a nonzero share.
func runReadReplicaBench(bin, dataDir, serverArgs string, shards int, connCounts []int,
	dur time.Duration, keys int, dist string, theta float64, seed int64, jsonOut string) error {
	if bin == "" {
		return fmt.Errorf("-read-replica needs -server-bin (the bench spawns both nodes itself)")
	}
	if dataDir == "" {
		d, err := os.MkdirTemp("", "kvbench-rr-data-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		dataDir = d
	}
	// Read-only sessions lease no process slot, so the slot budget only
	// covers the warm-up client and the background writer.
	const procs = 4
	addr, stop, err := spawnServer(bin, dataDir, serverArgs, shards, procs)
	if err != nil {
		return err
	}
	defer stop()
	rd, err := os.MkdirTemp("", "kvbench-rr-replica-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(rd)
	raddr, stopR, err := spawnServer(bin, rd, serverArgs+" -replica-of "+addr, shards, procs)
	if err != nil {
		return fmt.Errorf("spawning replica: %w", err)
	}
	defer stopR()
	if err := waitReplicaSynced(addr, 15*time.Second); err != nil {
		return fmt.Errorf("replica never synced: %w", err)
	}
	fmt.Printf("read-replica bench: primary=%s replica=%s dur=%s keys=%d dist=%s theta=%g\n",
		addr, raddr, dur, keys, dist, theta)

	// Warm every key with a nonzero value so reads land on live registers,
	// then let the replica ack the warm-up barriers before measuring.
	warmClient, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer warmClient.Close() //nolint:errcheck
	if err := warmKeys(warmClient, keys); err != nil {
		return err
	}
	if err := waitReplicaSynced(addr, 15*time.Second); err != nil {
		return fmt.Errorf("replica never caught up after warm-up: %w", err)
	}

	newSection := func() *runSection {
		return &runSection{
			Generated:  time.Now().UTC().Format(time.RFC3339),
			Go:         goruntime.Version(),
			GetPct:     100,
			Dist:       dist,
			Theta:      theta,
			Keys:       keys,
			DurSec:     dur.Seconds(),
			ServerArgs: serverArgs,
		}
	}
	primaryOnly, split := newSection(), newSection()
	for _, n := range connCounts {
		r, err := withWriteLoad(addr, seed, func() (phaseResult, error) {
			return benchReadPhase(addr, raddr, n, 0, dur, keys, dist, theta, seed)
		})
		if err != nil {
			return fmt.Errorf("primary-only conns=%d: %w", n, err)
		}
		primaryOnly.Phases = append(primaryOnly.Phases, r)
		r, err = withWriteLoad(addr, seed, func() (phaseResult, error) {
			return benchReadPhase(addr, raddr, n, n, dur, keys, dist, theta, seed)
		})
		if err != nil {
			return fmt.Errorf("split conns=%d+%d: %w", n, n, err)
		}
		split.Phases = append(split.Phases, r)
	}
	if jsonOut != "" {
		if err := mergeJSON(jsonOut, "read-primary-only", primaryOnly); err != nil {
			return err
		}
		return mergeJSON(jsonOut, "read-replica", split)
	}
	return nil
}

// warmKeys creates every key's register with a nonzero value, off the
// measured window (see benchPhase's warm-up comment).
func warmKeys(c *client.Client, keys int) error {
	const chunk = 64
	warm := make([]shardkv.KV, 0, chunk)
	for k := 0; k < keys; k += chunk {
		warm = warm[:0]
		for j := k; j < keys && j < k+chunk; j++ {
			warm = append(warm, shardkv.KV{Key: "bench-" + strconv.Itoa(j), Val: j + 1})
		}
		if _, err := c.MultiPut(warm); err != nil {
			return fmt.Errorf("key-space warm-up: %w", err)
		}
	}
	return nil
}

// withWriteLoad runs phase while one background connection keeps mutating
// the key space at the primary, so the measured reads race a live
// replication stream rather than a frozen view.
func withWriteLoad(primary string, seed int64, phase func() (phaseResult, error)) (phaseResult, error) {
	w, err := client.Dial(primary)
	if err != nil {
		return phaseResult{}, fmt.Errorf("dial writer: %w", err)
	}
	stop := make(chan struct{})
	var done sync.WaitGroup
	done.Add(1)
	go func() {
		defer done.Done()
		rng := rand.New(rand.NewSource(seed ^ 0x77))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := w.Put("bench-"+strconv.Itoa(rng.Intn(64)), i+1); err != nil {
				return // the phase's own errors are the ones that matter
			}
		}
	}()
	r, perr := phase()
	close(stop)
	done.Wait()
	w.Close() //nolint:errcheck
	return r, perr
}

// benchReadPhase drives pconns closed-loop GET streams at the primary and
// rconns at the replica, all over read-only sessions, and reports the
// aggregate plus the replica's share.
func benchReadPhase(primary, replica string, pconns, rconns int, dur time.Duration,
	keys int, dist string, theta float64, seed int64) (phaseResult, error) {
	conns := pconns + rconns
	clients := make([]*client.Client, conns)
	for i := range clients {
		target := primary
		if i >= pconns {
			target = replica
		}
		c, err := client.DialReadOnly(target)
		if err != nil {
			return phaseResult{}, fmt.Errorf("dial read-only %d (%s): %w", i, target, err)
		}
		defer c.Close() //nolint:errcheck
		clients[i] = c
	}

	lats := make([][]time.Duration, conns)
	errs := make([]error, conns)
	var replicaOps atomic.Int64
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workload.WorkerSeed(seed, conns, i)))
			nextKey := func() string { return "bench-" + strconv.Itoa(rng.Intn(keys)) }
			if dist == "zipf" {
				z := workload.NewZipf(rng, keys, theta)
				nextKey = func() string { return "bench-" + strconv.Itoa(z.Next()) }
			}
			onReplica := i >= pconns
			for {
				op := time.Now()
				if !op.Before(deadline) {
					return
				}
				if _, err := c.Get(nextKey()); err != nil {
					errs[i] = err
					return
				}
				lats[i] = append(lats[i], time.Since(op))
				if onReplica {
					replicaOps.Add(1)
				}
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return phaseResult{}, err
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return phaseResult{}, fmt.Errorf("no operations completed")
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	r := phaseResult{
		Conns:        conns,
		ReplicaConns: rconns,
		ReplicaOps:   int(replicaOps.Load()),
		Ops:          len(all),
		Throughput:   float64(len(all)) / elapsed.Seconds(),
		P50Ns:        int64(percentile(all, 50)),
		P99Ns:        int64(percentile(all, 99)),
		MaxNs:        int64(all[len(all)-1]),
	}
	fmt.Printf("reads: primary-conns=%d replica-conns=%d ops=%d (replica %d) throughput=%.0f ops/sec p50=%s p99=%s\n",
		pconns, rconns, r.Ops, r.ReplicaOps, r.Throughput,
		time.Duration(r.P50Ns), time.Duration(r.P99Ns))
	return r, nil
}
