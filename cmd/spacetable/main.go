// Command spacetable prints the space-complexity comparison (E7): shared
// bits beyond the value for the paper's bounded algorithms versus the
// unbounded sequence-number baselines, across process counts and operation
// counts.
//
// Usage:
//
//	spacetable [-valuebits 64]
package main

import (
	"flag"
	"fmt"
	"os"

	"detectable/internal/space"
)

func main() {
	valueBits := flag.Int("valuebits", 64, "width of the stored application value in bits")
	flag.Parse()
	if err := run(*valueBits); err != nil {
		fmt.Fprintln(os.Stderr, "spacetable:", err)
		os.Exit(1)
	}
}

func run(valueBits int) error {
	if valueBits < 1 {
		return fmt.Errorf("valuebits must be positive")
	}
	ns := []int{2, 4, 8, 16, 64}
	ops := []uint64{1_000, 1_000_000, 1_000_000_000}

	fmt.Println("CAS objects — shared bits beyond the value (Theorem 1 bound: Ω(N)):")
	fmt.Print(space.FormatTable(space.CompareCAS(ns, ops, valueBits)))
	fmt.Println()
	fmt.Println("Read/write registers — shared bits beyond the value:")
	fmt.Print(space.FormatTable(space.CompareRW(ns, ops, valueBits)))
	fmt.Println()
	fmt.Println("Per-process auxiliary state (Definition 1 / Theorem 2):")
	for _, p := range []space.Profile{
		space.RW(8, valueBits), space.RCAS(8, valueBits), space.MaxReg(8, valueBits),
	} {
		fmt.Printf("  %-24s %d aux bits, %d private bits per process\n",
			p.Impl, p.AuxBitsPerProc, p.PrivateBitsPerProc)
	}
	return nil
}
