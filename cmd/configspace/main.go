// Command configspace runs the Theorem 1 experiment (E3): it explores the
// detectable CAS object's reachable state space for increasing N and counts
// pairwise memory-distinct configurations, confirming the 2^N − 1 lower
// bound that makes Algorithm 2's Θ(N) extra bits optimal.
//
// With -ablate it additionally runs the Theorem 2 experiment (E4): the same
// machines with the caller-side auxiliary state removed, printing the
// detectability violation the explorer finds.
//
// Usage:
//
//	configspace [-maxn 4] [-ablate]
package main

import (
	"flag"
	"fmt"
	"os"

	"detectable/internal/model"
)

func main() {
	maxN := flag.Int("maxn", 4, "largest process count to explore (≤ 4)")
	ablate := flag.Bool("ablate", false, "also run the Theorem 2 aux-state ablation")
	flag.Parse()
	if err := run(*maxN, *ablate); err != nil {
		fmt.Fprintln(os.Stderr, "configspace:", err)
		os.Exit(1)
	}
}

func run(maxN int, ablate bool) error {
	if maxN < 1 || maxN > model.MaxProcs {
		return fmt.Errorf("maxn must be in [1, %d]", model.MaxProcs)
	}

	fmt.Println("Theorem 1 (E3): reachable memory-distinct configurations of detectable CAS")
	fmt.Printf("%4s %16s %16s %8s\n", "N", "configs found", "2^N - 1 bound", "verdict")
	for n := 1; n <= maxN; n++ {
		got, err := model.ConfigCount(n)
		if err != nil {
			return fmt.Errorf("N=%d: %w", n, err)
		}
		bound := 1<<n - 1
		verdict := "OK"
		if got < bound {
			verdict = "VIOLATED"
		}
		fmt.Printf("%4d %16d %16d %8s\n", n, got, bound, verdict)
	}

	if !ablate {
		return nil
	}

	fmt.Println()
	fmt.Println("Theorem 2 (E4): detectability without auxiliary state")
	casM := &model.CASMachine{
		N:          1,
		Scripts:    [][]model.OpCAS{{{Old: 0, New: 1}, {Old: 1, New: 0}}},
		MaxCrashes: 1,
		NoAux:      true,
	}
	if _, _, err := model.CheckCAS(casM, 1<<22); err != nil {
		fmt.Printf("  CAS  without aux state: %v\n", err)
	} else {
		return fmt.Errorf("CAS ablation found no violation — unexpected")
	}
	rwM := &model.RWMachine{
		N:          1,
		Scripts:    [][]int8{{1, 2}},
		MaxCrashes: 1,
		NoAux:      true,
	}
	if _, _, err := model.CheckRW(rwM, 1<<22); err != nil {
		fmt.Printf("  R/W  without aux state: %v\n", err)
	} else {
		return fmt.Errorf("R/W ablation found no violation — unexpected")
	}
	fmt.Println("  (with the announcement in place, the same scripts explore cleanly)")
	return nil
}
