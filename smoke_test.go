package detectable_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMainsSmoke builds and runs every cmd/ and examples/ main with fast
// flags, asserting a zero exit status and non-empty output — so the
// binaries are exercised by the ordinary test gate instead of rotting
// untested.
func TestMainsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests spawn the go tool; skipped in -short mode")
	}
	cases := []struct {
		name string
		args []string
	}{
		{"quickstart", []string{"run", "./examples/quickstart"}},
		{"kvstore", []string{"run", "./examples/kvstore"}},
		{"bankcounter", []string{"run", "./examples/bankcounter"}},
		{"jobqueue", []string{"run", "./examples/jobqueue"}},
		{"configspace", []string{"run", "./cmd/configspace", "-maxn", "3"}},
		{"perturb", []string{"run", "./cmd/perturb", "-domain", "2", "-depth", "4"}},
		{"spacetable", []string{"run", "./cmd/spacetable"}},
		{"crashstorm", []string{"run", "./cmd/crashstorm", "-procs", "2", "-rounds", "2", "-ops", "3"}},
		{"loadgen", []string{"run", "./cmd/loadgen", "-mix", "crash-storm", "-procs", "2", "-shards", "2", "-keys", "8", "-dur", "200ms"}},
		{"kvserverd", []string{"run", "./cmd/kvserverd", "-addr", "127.0.0.1:0", "-shards", "2", "-procs", "2", "-dur", "300ms"}},
		{"kvbench", []string{"run", "./cmd/kvbench", "-selftest", "-shards", "2", "-conns", "1,2", "-dur", "150ms", "-keys", "32"}},
		{"loadgen-remote", []string{"run", "./cmd/loadgen", "-remote", "self", "-mix", "crash-storm", "-procs", "2", "-shards", "2", "-keys", "8", "-dur", "300ms"}},
		{"benchjson-gate", []string{"run", "./cmd/benchjson", "-checkonly"}},
		{"explore", []string{"run", "./cmd/explore", "-objects", "rcas,maxreg", "-procs", "2", "-ops", "1", "-crashes", "1", "-preempt", "1", "-budget", "10s"}},
		{"explore-list", []string{"run", "./cmd/explore", "-list"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", tc.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("go %v failed: %v\n%s", tc.args, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("go %v produced no output", tc.args)
			}
		})
	}
}

// TestRestartStormSmoke runs a short whole-process crash-restart cycle:
// loadgen -restart-storm SIGKILLs a durable kvserverd mid-workload and
// fails on any cross-restart detectability violation. The CI wire-smoke
// job runs the full-length version; this pins the mode into the ordinary
// test gate.
func TestRestartStormSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes; skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "kvserverd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/kvserverd").CombinedOutput(); err != nil {
		t.Fatalf("build kvserverd: %v\n%s", err, out)
	}
	// Two storms: the default per-mutation commit schedule, and group
	// commit pinned at a tiny epoch interval so SIGKILLs land on live
	// epoch boundaries with parked replies — the release-on-epoch
	// invariant under a real whole-process crash.
	variants := []struct {
		name       string
		serverArgs string
	}{
		{"per-mutation", "-group-commit=false"},
		{"group-commit", "-epoch-interval 2ms"},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./cmd/loadgen",
				"-restart-storm", "-server-bin", bin, "-data", filepath.Join(dir, "data-"+v.name),
				"-mix", "crash-storm", "-procs", "2", "-shards", "2", "-keys", "8",
				"-dur", "1s", "-restarts", "2", "-restart-every", "400ms",
				"-server-args", v.serverArgs).CombinedOutput()
			if err != nil {
				t.Fatalf("restart-storm (%s) failed: %v\n%s", v.name, err, out)
			}
			if !strings.Contains(string(out), "zero violations") {
				t.Fatalf("restart-storm (%s) did not report zero violations:\n%s", v.name, out)
			}
		})
	}
}

// TestFailoverStormSmoke runs a short primary/backup failover cycle:
// loadgen -failover-storm SIGKILLs the primary mid-workload, promotes the
// warm standby and requires zero detectability violations plus at least
// one verdict served from the promoted replica's recovered outcome
// window. The CI wire-smoke job runs the full-length version; this pins
// the mode into the ordinary test gate.
func TestFailoverStormSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes; skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "kvserverd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/kvserverd").CombinedOutput(); err != nil {
		t.Fatalf("build kvserverd: %v\n%s", err, out)
	}
	out, err := exec.Command("go", "run", "./cmd/loadgen",
		"-failover-storm", "-server-bin", bin, "-data", filepath.Join(dir, "nodes"),
		"-mix", "crash-storm", "-procs", "2", "-shards", "2", "-keys", "8",
		"-dur", "2s", "-failovers", "2", "-failover-every", "500ms",
		"-server-args", "-epoch-interval 2ms").CombinedOutput()
	if err != nil {
		t.Fatalf("failover-storm failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "zero violations") {
		t.Fatalf("failover-storm did not report zero violations:\n%s", out)
	}
}
